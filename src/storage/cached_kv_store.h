// The "cached" storage backend: a bounded LRU row cache over another store.
//
// Spec: cached:capacity=<rows>,inner=<spec>   (defaults: 4096, "sorted")
//
// Point reads (Get/GetOrDefault) consult the cache first and fall through
// to the inner backend on a miss, caching present keys; writes invalidate
// the touched keys so the cache never serves stale rows. Only positive
// entries are cached — absent keys always hit the inner store — and scans,
// snapshots and fingerprints delegate entirely, so the wrapper changes the
// cost profile of the point-read path and nothing else (the conformance
// battery runs the full model check against it like any plain backend).
//
// Hit/miss counters surface through Stats().cache_hits/cache_misses and,
// via core::Cluster, through obs::MetricsRegistry as store.cache_hits /
// store.cache_misses.
//
// Thread-safety matches the StoreCounters idiom: const point reads are the
// one path concurrent workers share, and they mutate the LRU recency list,
// so the cache map+list are guarded by one mutex. Mutations follow the
// store-wide single-writer contract.
#ifndef THUNDERBOLT_STORAGE_CACHED_KV_STORE_H_
#define THUNDERBOLT_STORAGE_CACHED_KV_STORE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/kv_store.h"

namespace thunderbolt::storage {

class CachedKVStore final : public KVStore {
 public:
  /// Wraps `inner` with a cache of at most `capacity` rows (min 1).
  CachedKVStore(std::unique_ptr<KVStore> inner, size_t capacity);

  /// Registry factory: parses StoreOptions::params
  /// ("capacity=<n>,inner=<spec>"). Returns nullptr on unknown params or
  /// an unresolvable inner spec.
  static std::unique_ptr<KVStore> FromOptions(const StoreOptions& options);

  std::string name() const override { return "cached"; }
  Result<VersionedValue> Get(const Key& key) const override;
  Value GetOrDefault(const Key& key, Value default_value) const override;
  Status Put(const Key& key, Value value) override;
  Status Delete(const Key& key) override;
  Status Write(const WriteBatch& batch) override;
  Status RestoreEntry(const Key& key, const VersionedValue& vv) override;
  Status Flush() override { return inner_->Flush(); }
  size_t size() const override { return inner_->size(); }
  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit = 0) const override;
  std::shared_ptr<const StoreSnapshot> Snapshot() const override;
  std::unique_ptr<KVStore> Fork() const override;
  void Reserve(size_t expected_keys) override {
    inner_->Reserve(expected_keys);
  }
  uint64_t ContentFingerprint() const override {
    return inner_->ContentFingerprint();
  }
  StoreStats Stats() const override;

  size_t capacity() const { return capacity_; }
  /// Rows currently cached (<= capacity).
  size_t cached_rows() const;

 private:
  struct CacheEntry {
    VersionedValue vv;
    std::list<Key>::iterator lru;  // Position in lru_ (front = most recent).
  };

  /// Cache lookup; on hit copies the row into *out and refreshes recency.
  bool CacheGet(const Key& key, VersionedValue* out) const;
  /// Inserts/overwrites a row, evicting from the LRU tail past capacity.
  void CachePut(const Key& key, const VersionedValue& vv) const;
  void CacheErase(const Key& key);

  std::unique_ptr<KVStore> inner_;
  const size_t capacity_;
  mutable std::mutex mu_;                 // Guards map_ + lru_.
  mutable std::unordered_map<Key, CacheEntry> map_;
  mutable std::list<Key> lru_;
  mutable StoreCounters counters_;
};

}  // namespace thunderbolt::storage

#endif  // THUNDERBOLT_STORAGE_CACHED_KV_STORE_H_
