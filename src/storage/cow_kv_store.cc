#include "storage/cow_kv_store.h"

#include <utility>

namespace thunderbolt::storage {

namespace {

using Node = CowKVStore::Node;
using NodePtr = CowKVStore::NodePtr;

/// Fixed 64-bit key hash (FNV-1a + splitmix finisher). Treap priorities
/// must be a pure function of the key so the tree shape depends only on
/// the live key set, never on insertion order.
uint64_t Prio(const Key& key) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

size_t Count(const NodePtr& t) { return t == nullptr ? 0 : t->count; }

NodePtr MakeNode(Key key, VersionedValue vv, uint64_t prio, NodePtr left,
                 NodePtr right) {
  auto n = std::make_shared<Node>();
  n->key = std::move(key);
  n->vv = vv;
  n->prio = prio;
  n->count = 1 + Count(left) + Count(right);
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

/// Path-copies `t` into (keys < key, keys >= key).
void SplitLess(const NodePtr& t, const Key& key, NodePtr* l, NodePtr* r) {
  if (t == nullptr) {
    *l = nullptr;
    *r = nullptr;
    return;
  }
  if (t->key < key) {
    NodePtr rl, rr;
    SplitLess(t->right, key, &rl, &rr);
    *l = MakeNode(t->key, t->vv, t->prio, t->left, std::move(rl));
    *r = std::move(rr);
  } else {
    NodePtr ll, lr;
    SplitLess(t->left, key, &ll, &lr);
    *l = std::move(ll);
    *r = MakeNode(t->key, t->vv, t->prio, std::move(lr), t->right);
  }
}

/// Path-copies `t` into (keys <= key, keys > key).
void SplitLeq(const NodePtr& t, const Key& key, NodePtr* l, NodePtr* r) {
  if (t == nullptr) {
    *l = nullptr;
    *r = nullptr;
    return;
  }
  if (key < t->key) {
    NodePtr ll, lr;
    SplitLeq(t->left, key, &ll, &lr);
    *l = std::move(ll);
    *r = MakeNode(t->key, t->vv, t->prio, std::move(lr), t->right);
  } else {
    NodePtr rl, rr;
    SplitLeq(t->right, key, &rl, &rr);
    *l = MakeNode(t->key, t->vv, t->prio, t->left, std::move(rl));
    *r = std::move(rr);
  }
}

/// Merges two treaps where every key in `a` < every key in `b`.
NodePtr Merge(const NodePtr& a, const NodePtr& b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  // Deterministic tie-break on equal priorities: lower key on top, so the
  // shape stays a pure function of the key set.
  if (a->prio > b->prio || (a->prio == b->prio && a->key < b->key)) {
    return MakeNode(a->key, a->vv, a->prio, a->left, Merge(a->right, b));
  }
  return MakeNode(b->key, b->vv, b->prio, Merge(a, b->left), b->right);
}

const Node* Find(const NodePtr& root, const Key& key) {
  const Node* cur = root.get();
  while (cur != nullptr) {
    if (key < cur->key) {
      cur = cur->left.get();
    } else if (cur->key < key) {
      cur = cur->right.get();
    } else {
      return cur;
    }
  }
  return nullptr;
}

/// Path-copies the spine down to `key` (which must exist in `t`) and
/// rewrites its value, bumping the version. No structural change, so this
/// costs one root-to-node path — the hot case for post-commit batches,
/// which overwhelmingly overwrite live keys.
NodePtr UpdateExisting(const NodePtr& t, const Key& key, Value value) {
  if (key < t->key) {
    return MakeNode(t->key, t->vv, t->prio,
                    UpdateExisting(t->left, key, value), t->right);
  }
  if (t->key < key) {
    return MakeNode(t->key, t->vv, t->prio, t->left,
                    UpdateExisting(t->right, key, value));
  }
  return MakeNode(key, VersionedValue{value, t->vv.version + 1}, t->prio,
                  t->left, t->right);
}

/// Upserts `key`: bumps the version of a live key, starts fresh keys at 1.
NodePtr Upsert(const NodePtr& root, const Key& key, Value value) {
  if (Find(root, key) != nullptr) return UpdateExisting(root, key, value);
  // Fresh key: split around the insertion point and merge the new leaf in
  // (two splits + two merges of one spine each).
  NodePtr less, geq;
  SplitLess(root, key, &less, &geq);
  NodePtr fresh =
      MakeNode(key, VersionedValue{value, 1}, Prio(key), nullptr, nullptr);
  return Merge(Merge(less, fresh), geq);
}

/// Upserts `key` with an exact VersionedValue (no version bump) — the
/// RestoreEntry path. Path-copies a live key's spine; inserts otherwise.
NodePtr UpsertExact(const NodePtr& root, const Key& key,
                    const VersionedValue& vv) {
  NodePtr less, geq, node, greater;
  SplitLess(root, key, &less, &geq);
  SplitLeq(geq, key, &node, &greater);
  NodePtr fresh = MakeNode(key, vv, Prio(key), nullptr, nullptr);
  return Merge(Merge(less, fresh), greater);
}

/// Removes `key` if present.
NodePtr Erase(const NodePtr& root, const Key& key) {
  if (Find(root, key) == nullptr) return root;  // Keep full sharing.
  NodePtr less, geq, node, greater;
  SplitLess(root, key, &less, &geq);
  SplitLeq(geq, key, &node, &greater);
  return Merge(less, greater);
}

/// In-order walk over [begin, end) with subtree pruning.
void ScanNode(const NodePtr& t, const Key& begin, const Key& end,
              size_t limit, std::vector<ScanEntry>* out) {
  if (t == nullptr || (limit != 0 && out->size() >= limit)) return;
  if (begin <= t->key) ScanNode(t->left, begin, end, limit, out);
  if (limit != 0 && out->size() >= limit) return;
  if (begin <= t->key && (end.empty() || t->key < end)) {
    out->push_back(ScanEntry{t->key, t->vv});
  }
  if (end.empty() || t->key < end) {
    ScanNode(t->right, begin, end, limit, out);
  }
}

uint64_t FingerprintTree(const NodePtr& root) {
  // Iterative in-order walk feeding the shared cross-backend digest.
  ContentDigest digest;
  std::vector<const Node*> stack;
  const Node* cur = root.get();
  while (cur != nullptr || !stack.empty()) {
    while (cur != nullptr) {
      stack.push_back(cur);
      cur = cur->left.get();
    }
    cur = stack.back();
    stack.pop_back();
    digest.Add(cur->key, cur->vv.value);
    cur = cur->right.get();
  }
  return digest.Finish();
}

/// O(1) snapshot: retains the root; the tree below is immutable.
class CowSnapshot final : public StoreSnapshot {
 public:
  explicit CowSnapshot(NodePtr root) : root_(std::move(root)) {}

  Result<VersionedValue> Get(const Key& key) const override {
    const Node* n = Find(root_, key);
    if (n == nullptr) return Status::NotFound("key not found: " + key);
    return n->vv;
  }

  Value GetOrDefault(const Key& key, Value default_value) const override {
    const Node* n = Find(root_, key);
    return n == nullptr ? default_value : n->vv.value;
  }

  size_t size() const override { return Count(root_); }

  std::vector<ScanEntry> Scan(const Key& begin, const Key& end,
                              size_t limit) const override {
    std::vector<ScanEntry> out;
    ScanNode(root_, begin, end, limit, &out);
    return out;
  }

 private:
  NodePtr root_;
};

}  // namespace

Result<VersionedValue> CowKVStore::Get(const Key& key) const {
  ++counters_.gets;
  const Node* n = Find(root_, key);
  if (n == nullptr) return Status::NotFound("key not found: " + key);
  return n->vv;
}

Value CowKVStore::GetOrDefault(const Key& key, Value default_value) const {
  ++counters_.gets;
  const Node* n = Find(root_, key);
  return n == nullptr ? default_value : n->vv.value;
}

Status CowKVStore::Put(const Key& key, Value value) {
  ++counters_.puts;
  root_ = Upsert(root_, key, value);
  return Status::OK();
}

Status CowKVStore::Delete(const Key& key) {
  ++counters_.deletes;
  root_ = Erase(root_, key);
  return Status::OK();
}

Status CowKVStore::Write(const WriteBatch& batch) {
  ++counters_.batches;
  // Entries apply in order onto the same root; snapshots taken before the
  // batch keep the old root, so atomicity-vs-snapshots holds structurally.
  for (const WriteBatch::Entry& e : batch.entries()) {
    if (e.op == WriteBatch::Op::kDelete) {
      ++counters_.deletes;
      root_ = Erase(root_, e.key);
    } else {
      ++counters_.puts;
      root_ = Upsert(root_, e.key, e.value);
    }
  }
  return Status::OK();
}

Status CowKVStore::RestoreEntry(const Key& key, const VersionedValue& vv) {
  root_ = UpsertExact(root_, key, vv);
  return Status::OK();
}

size_t CowKVStore::size() const { return Count(root_); }

std::vector<ScanEntry> CowKVStore::Scan(const Key& begin, const Key& end,
                                        size_t limit) const {
  ++counters_.scans;
  std::vector<ScanEntry> out;
  ScanNode(root_, begin, end, limit, &out);
  return out;
}

std::shared_ptr<const StoreSnapshot> CowKVStore::Snapshot() const {
  ++counters_.snapshots;
  return std::make_shared<CowSnapshot>(root_);
}

std::unique_ptr<KVStore> CowKVStore::Fork() const {
  ++counters_.forks;
  auto copy = std::make_unique<CowKVStore>();
  copy->root_ = root_;
  return copy;
}

uint64_t CowKVStore::ContentFingerprint() const {
  return FingerprintTree(root_);
}

StoreStats CowKVStore::Stats() const {
  StoreStats stats = counters_.ToStats();
  stats.backend = name();
  stats.live_keys = Count(root_);
  return stats;
}

}  // namespace thunderbolt::storage
