// Pluggable placement subsystem: policy-driven account -> shard mapping.
//
// Thunderbolt classifies transactions as single- vs cross-shard purely from
// their account arguments (paper section 3.1), so *where* accounts live is
// the single biggest lever on cross-shard traffic. This module makes that
// decision a first-class, swappable policy instead of a hard-coded hash:
//
//   hash       Sha256(account) % num_shards — the historical default,
//              byte-identical to the mapping txn::ShardMapper always used.
//   range      Ordered account-prefix ranges: shard i holds the accounts
//              between split points i-1 and i ("splits=g;p" puts [..,"g")
//              on shard 0, ["g","p") on shard 1, ["p",..) on shard 2).
//   directory  An explicit account -> shard dictionary with a hash
//              fallback for unlisted accounts. Serializable so every
//              replica can hold the same mapping, and the only built-in
//              that supports hot-key migration: Rebalance consults remote-
//              access counters and deterministically re-homes the top-K
//              hottest remote-accessed accounts.
//   locality   Workload-hinted: accounts are first folded onto a locality
//              group (e.g. TPC-C "w3.d5.c12" -> "w3") by the workload's
//              PlacementHint, then the group is hashed — so entities that
//              transact together land on the same shard.
//
// Policies register by name in PlacementRegistry::Global(), mirroring
// workload::WorkloadRegistry, which is how core::Cluster and the bench
// drivers select one from a `--placement <name>` flag without compile-time
// coupling. Every policy must be deterministic: all replicas construct the
// same policy from the same configuration and must agree on every lookup,
// which Fingerprint() lets tests and peers assert cheaply.
#ifndef THUNDERBOLT_PLACEMENT_PLACEMENT_H_
#define THUNDERBOLT_PLACEMENT_PLACEMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace thunderbolt::placement {

/// Maps an account to the locality group it should co-locate with (the
/// "locality" policy hashes the group instead of the account). Supplied by
/// the workload — see workload::Workload::PlacementHint.
using AccountGroupFn = std::function<std::string(const std::string&)>;

/// Everything a policy factory may consume. Fields a policy does not
/// understand are ignored (e.g. `hint` by "hash").
struct PlacementOptions {
  uint32_t num_shards = 1;
  /// Policy-specific "key=value[,key=value...]" parameters:
  ///   range:     splits=<s1>;<s2>;...   (sorted, at most num_shards - 1)
  ///   directory: top_k=<n>              (hot keys migrated per Rebalance)
  ///              max_entries=<n>        (dictionary bound; LRU eviction)
  ///              assign=<acct>:<shard>;<acct>:<shard>;...
  /// Unknown keys or malformed values abort — placement is cluster
  /// configuration, and a typo must not silently place every account.
  std::string params;
  /// Optional workload locality hint (see AccountGroupFn).
  AccountGroupFn hint;
};

/// One hot-key migration performed by Rebalance.
struct MigrationEvent {
  std::string account;
  ShardId from = 0;
  ShardId to = 0;
  /// Remote accesses observed for the account in the closing epoch.
  uint64_t remote_accesses = 0;
  /// The epoch the migration takes effect in (filled by the cluster).
  EpochId epoch = 0;
};

/// Per-shard remote-access counters. The cluster records, for every
/// committed cross-shard transaction, each account the transaction reached
/// *outside* its home shard — keyed by the accessing (home) shard, so
/// Rebalance can move a hot account toward the shard that pulls on it
/// hardest. Aggregation is order-independent: any insertion order yields
/// the same HottestRemote() ranking.
///
/// Internally synchronized: the tracker lives in the cluster's shared
/// state, and with the thread executor pool commit-path bookkeeping can
/// run concurrently with stats queries; every method locks `mu_`.
class AccessTracker {
 public:
  /// Account was accessed by a transaction homed at `home_shard` while
  /// living in a different shard.
  void RecordRemoteAccess(const std::string& account, ShardId home_shard);

  struct AccountStats {
    std::string account;
    uint64_t total = 0;
    /// Accesses by home shard, ascending shard id.
    std::vector<std::pair<ShardId, uint64_t>> by_shard;
  };

  /// The `top_k` hottest remote-accessed accounts, sorted by total
  /// accesses descending with ties broken by account name — deterministic
  /// regardless of recording order.
  std::vector<AccountStats> HottestRemote(size_t top_k) const;

  uint64_t total_remote_accesses() const;
  bool empty() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unordered_map<ShardId, uint64_t>>
      counts_;
  uint64_t total_ = 0;
};

/// Abstract account -> shard placement. Implementations must be total
/// (every account maps to a shard < num_shards), stable (same account,
/// same answer, until Rebalance) and replica-deterministic.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Registry name ("hash", "range", "directory", "locality").
  virtual std::string name() const = 0;

  virtual uint32_t num_shards() const = 0;

  virtual ShardId ShardOfAccount(const std::string& account) const = 0;

  /// Hot-key migration hook, invoked by the cluster at reconfiguration
  /// boundaries (the only point where the epoch fences in-flight
  /// transactions). Policies that support migration re-home hot accounts
  /// and return the moves; the default is a no-op. Must be deterministic
  /// in `stats` — every replica applies the same migration.
  virtual std::vector<MigrationEvent> Rebalance(const AccessTracker& stats) {
    (void)stats;
    return {};
  }

  /// Deterministic digest of the policy's full mapping state. Two replicas
  /// with equal fingerprints agree on every account's shard; changes after
  /// every Rebalance that moved an account.
  virtual uint64_t Fingerprint() const = 0;

  /// Monotone counter bumped on every mutation of the mapping (Assign,
  /// Rebalance migrations, evictions). Lets lookup caches — e.g. the
  /// account -> shard memo in txn::ShardMapper — detect staleness with one
  /// compare instead of re-resolving every account.
  uint64_t generation() const { return generation_; }

 protected:
  /// Mutating policies call this whenever any account's mapping changes.
  void BumpGeneration() { ++generation_; }

 private:
  uint64_t generation_ = 0;
};

// --- Built-ins --------------------------------------------------------------

/// Sha256(account) % num_shards — byte-identical to the historical
/// txn::ShardMapper behavior.
class HashPlacement final : public PlacementPolicy {
 public:
  explicit HashPlacement(uint32_t num_shards);

  std::string name() const override { return "hash"; }
  uint32_t num_shards() const override { return num_shards_; }
  ShardId ShardOfAccount(const std::string& account) const override;
  uint64_t Fingerprint() const override;

 private:
  uint32_t num_shards_;
};

/// Ordered account ranges delimited by `splits` (sorted, at most
/// num_shards - 1 entries): an account maps to the index of the first
/// split greater than it. With fewer splits than shards the trailing
/// shards simply receive no accounts.
class RangePlacement final : public PlacementPolicy {
 public:
  RangePlacement(uint32_t num_shards, std::vector<std::string> splits);

  /// Evenly partitions the two-byte prefix space — a total, balanced
  /// default when no workload-specific splits are configured.
  static std::vector<std::string> DefaultSplits(uint32_t num_shards);

  std::string name() const override { return "range"; }
  uint32_t num_shards() const override { return num_shards_; }
  ShardId ShardOfAccount(const std::string& account) const override;
  uint64_t Fingerprint() const override;

  const std::vector<std::string>& splits() const { return splits_; }

 private:
  uint32_t num_shards_;
  std::vector<std::string> splits_;
};

/// Explicit account -> shard dictionary with a hash fallback, the policy
/// behind hot-key migration. The dictionary is serializable so replicas
/// (or tests) can exchange and compare the exact mapping.
///
/// The dictionary is bounded: it holds at most `max_entries` pins, and
/// when a migration (or Assign) would exceed the bound the least-recently
/// migrated pins are evicted back to the hash fallback — so long runs with
/// churning hot sets cannot grow it without limit. Eviction is
/// deterministic (strict LRU over migration order, which all replicas
/// apply identically) and reported as MigrationEvents by Rebalance.
class DirectoryPlacement final : public PlacementPolicy {
 public:
  static constexpr uint32_t kDefaultTopK = 8;
  static constexpr uint32_t kDefaultMaxEntries = 4096;

  explicit DirectoryPlacement(uint32_t num_shards,
                              uint32_t top_k = kDefaultTopK,
                              uint32_t max_entries = kDefaultMaxEntries);

  std::string name() const override { return "directory"; }
  uint32_t num_shards() const override { return num_shards_; }
  ShardId ShardOfAccount(const std::string& account) const override;

  /// Deterministically re-homes up to top_k hottest remote-accessed
  /// accounts to the shard that accessed them most (ties: lowest shard
  /// id). Accounts already living in their hottest accessor's shard are
  /// left in place and do not consume a migration slot.
  std::vector<MigrationEvent> Rebalance(const AccessTracker& stats) override;

  uint64_t Fingerprint() const override;

  /// Pins `account` to `shard` (clamped to num_shards).
  void Assign(const std::string& account, ShardId shard);

  /// Text round-trip so all replicas can agree on the exact dictionary:
  /// Deserialize(Serialize()) reconstructs an equal-fingerprint policy.
  std::string Serialize() const;
  static Result<std::unique_ptr<DirectoryPlacement>> Deserialize(
      const std::string& data);

  size_t directory_size() const { return directory_.size(); }
  uint32_t top_k() const { return top_k_; }
  uint32_t max_entries() const { return max_entries_; }

 private:
  struct Pin {
    ShardId shard = 0;
    /// Migration-recency stamp (monotone counter): smallest = least
    /// recently migrated = first evicted at the bound.
    uint64_t touch = 0;
  };

  /// Pins `account`, stamps its recency, and evicts past the bound.
  /// Eviction events (pins falling back to hash) append to `events` when
  /// given and actually change the account's shard.
  void PinAccount(const std::string& account, ShardId shard,
                  std::vector<MigrationEvent>* events);

  uint32_t num_shards_;
  uint32_t top_k_;
  uint32_t max_entries_;
  uint64_t touch_counter_ = 0;
  /// Ordered so serialization and Fingerprint never depend on insertion
  /// order.
  std::map<std::string, Pin> directory_;
};

/// Workload-hinted placement: hashes the account's locality group instead
/// of the account itself, so entities the workload says transact together
/// (TPC-C districts/customers with their home warehouse, SmallBank payment
/// pairs) co-locate. Without a hint it degenerates to "hash".
class LocalityPlacement final : public PlacementPolicy {
 public:
  LocalityPlacement(uint32_t num_shards, AccountGroupFn hint);

  std::string name() const override { return "locality"; }
  uint32_t num_shards() const override { return num_shards_; }
  ShardId ShardOfAccount(const std::string& account) const override;
  /// The hint is workload code shared by all replicas, so configuration
  /// (name + shard count) identifies the mapping.
  uint64_t Fingerprint() const override;

 private:
  uint32_t num_shards_;
  AccountGroupFn hint_;
};

/// Name -> factory registry, mirroring workload::WorkloadRegistry.
/// `Global()` is preloaded with the four built-ins.
class PlacementRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<PlacementPolicy>(const PlacementOptions&)>;

  /// Registers `factory` under `name`. Overwrites any existing entry.
  void Register(std::string name, Factory factory);

  /// Instantiates the named policy, or nullptr for unknown names.
  /// Malformed `options.params` abort (configuration error).
  std::unique_ptr<PlacementPolicy> Create(
      const std::string& name, const PlacementOptions& options) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The process-wide registry, preloaded with the built-ins.
  static PlacementRegistry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace thunderbolt::placement

#endif  // THUNDERBOLT_PLACEMENT_PLACEMENT_H_
