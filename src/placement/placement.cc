#include "placement/placement.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"

namespace thunderbolt::placement {

namespace {

/// One "key=value" assignment from a placement param spec.
struct Param {
  std::string key;
  std::string value;
};

[[noreturn]] void AbortBadParams(const std::string& spec,
                                 const std::string& why) {
  std::fprintf(stderr, "placement: bad params \"%s\": %s\n", spec.c_str(),
               why.c_str());
  std::abort();
}

/// Splits "key=value[,key=value...]", aborting on malformed entries —
/// placement is cluster configuration and a typo must not be ignored.
std::vector<Param> SplitParams(const std::string& spec) {
  std::vector<Param> params;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > start) {
      std::string item = spec.substr(start, comma - start);
      size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
        AbortBadParams(spec, "\"" + item + "\" is not key=value");
      }
      params.push_back(Param{item.substr(0, eq), item.substr(eq + 1)});
    }
    start = comma + 1;
  }
  return params;
}

/// Splits a ';'-separated list value (ranges' split points, directory
/// assignments).
std::vector<std::string> SplitSemis(const std::string& value) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= value.size()) {
    size_t semi = value.find(';', start);
    if (semi == std::string::npos) semi = value.size();
    if (semi > start) items.push_back(value.substr(start, semi - start));
    start = semi + 1;
  }
  return items;
}

uint32_t ParseShardCount(uint32_t num_shards) {
  return num_shards == 0 ? 1 : num_shards;
}

uint64_t ParseU64OrAbort(const std::string& spec, const Param& p) {
  if (p.value.empty() || p.value[0] == '-' || p.value[0] == '+') {
    AbortBadParams(spec, p.key + ": bad integer \"" + p.value + "\"");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(p.value.c_str(), &end, 10);
  if (end == p.value.c_str() || *end != '\0' || errno == ERANGE) {
    AbortBadParams(spec, p.key + ": bad integer \"" + p.value + "\"");
  }
  return v;
}

ShardId HashShard(const std::string& account, uint32_t num_shards) {
  return static_cast<ShardId>(Sha256::Digest(account).Prefix64() % num_shards);
}

}  // namespace

// --- AccessTracker ----------------------------------------------------------

void AccessTracker::RecordRemoteAccess(const std::string& account,
                                       ShardId home_shard) {
  std::lock_guard<std::mutex> lk(mu_);
  ++counts_[account][home_shard];
  ++total_;
}

std::vector<AccessTracker::AccountStats> AccessTracker::HottestRemote(
    size_t top_k) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<AccountStats> all;
  all.reserve(counts_.size());
  for (const auto& [account, by_shard] : counts_) {
    AccountStats s;
    s.account = account;
    s.by_shard.assign(by_shard.begin(), by_shard.end());
    std::sort(s.by_shard.begin(), s.by_shard.end());
    for (const auto& [shard, count] : s.by_shard) s.total += count;
    all.push_back(std::move(s));
  }
  std::sort(all.begin(), all.end(),
            [](const AccountStats& a, const AccountStats& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.account < b.account;
            });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

void AccessTracker::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counts_.clear();
  total_ = 0;
}

uint64_t AccessTracker::total_remote_accesses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

bool AccessTracker::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counts_.empty();
}

// --- HashPlacement ----------------------------------------------------------

HashPlacement::HashPlacement(uint32_t num_shards)
    : num_shards_(ParseShardCount(num_shards)) {}

ShardId HashPlacement::ShardOfAccount(const std::string& account) const {
  return HashShard(account, num_shards_);
}

uint64_t HashPlacement::Fingerprint() const {
  Sha256 h;
  h.Update("placement.hash");
  h.UpdateInt(num_shards_);
  return h.Finalize().Prefix64();
}

// --- RangePlacement ---------------------------------------------------------

RangePlacement::RangePlacement(uint32_t num_shards,
                               std::vector<std::string> splits)
    : num_shards_(ParseShardCount(num_shards)), splits_(std::move(splits)) {
  assert(std::is_sorted(splits_.begin(), splits_.end()));
  assert(splits_.size() < num_shards_ || num_shards_ == 1);
  if (splits_.size() >= num_shards_) splits_.resize(num_shards_ - 1);
}

std::vector<std::string> RangePlacement::DefaultSplits(uint32_t num_shards) {
  num_shards = ParseShardCount(num_shards);
  std::vector<std::string> splits;
  splits.reserve(num_shards - 1);
  for (uint32_t i = 1; i < num_shards; ++i) {
    // Two-byte big-endian boundary at 65536 * i / n: strictly increasing
    // for any shard count, partitioning the prefix space evenly.
    uint32_t boundary = static_cast<uint32_t>(
        (static_cast<uint64_t>(i) << 16) / num_shards);
    std::string split;
    split.push_back(static_cast<char>(boundary >> 8));
    split.push_back(static_cast<char>(boundary & 0xff));
    splits.push_back(std::move(split));
  }
  return splits;
}

ShardId RangePlacement::ShardOfAccount(const std::string& account) const {
  return static_cast<ShardId>(
      std::upper_bound(splits_.begin(), splits_.end(), account) -
      splits_.begin());
}

uint64_t RangePlacement::Fingerprint() const {
  Sha256 h;
  h.Update("placement.range");
  h.UpdateInt(num_shards_);
  for (const std::string& s : splits_) {
    h.UpdateInt<uint32_t>(static_cast<uint32_t>(s.size()));
    h.Update(s);
  }
  return h.Finalize().Prefix64();
}

// --- DirectoryPlacement -----------------------------------------------------

DirectoryPlacement::DirectoryPlacement(uint32_t num_shards, uint32_t top_k,
                                       uint32_t max_entries)
    : num_shards_(ParseShardCount(num_shards)),
      top_k_(top_k == 0 ? 1 : top_k),
      max_entries_(max_entries == 0 ? 1 : max_entries) {}

ShardId DirectoryPlacement::ShardOfAccount(const std::string& account) const {
  auto it = directory_.find(account);
  if (it != directory_.end()) return it->second.shard;
  return HashShard(account, num_shards_);
}

void DirectoryPlacement::PinAccount(
    const std::string& account, ShardId shard,
    std::vector<MigrationEvent>* events) {
  directory_[account] = Pin{shard, ++touch_counter_};
  BumpGeneration();
  while (directory_.size() > max_entries_) {
    // Strict LRU over migration order: evict the pin with the smallest
    // recency stamp (unique, so the victim is deterministic). The linear
    // victim scan is bounded by max_entries and only runs when an insert
    // overflows the bound — at reconfiguration boundaries (<= top_k
    // inserts per epoch) or config-time Assigns — so an index by touch
    // stamp would not pay for its bookkeeping.
    auto victim = directory_.begin();
    for (auto it = directory_.begin(); it != directory_.end(); ++it) {
      if (it->second.touch < victim->second.touch) victim = it;
    }
    const ShardId pinned = victim->second.shard;
    const ShardId fallback = HashShard(victim->first, num_shards_);
    if (events != nullptr && fallback != pinned) {
      events->push_back(
          MigrationEvent{victim->first, pinned, fallback, 0, 0});
    }
    directory_.erase(victim);
    BumpGeneration();
  }
}

void DirectoryPlacement::Assign(const std::string& account, ShardId shard) {
  PinAccount(account, shard % num_shards_, nullptr);
}

std::vector<MigrationEvent> DirectoryPlacement::Rebalance(
    const AccessTracker& stats) {
  std::vector<MigrationEvent> events;
  for (const AccessTracker::AccountStats& s : stats.HottestRemote(top_k_)) {
    const ShardId current = ShardOfAccount(s.account);
    // Target: the shard whose transactions reached out to this account
    // most often; ties break toward the lowest shard id.
    ShardId target = current;
    uint64_t best = 0;
    for (const auto& [shard, count] : s.by_shard) {
      if (count > best) {
        best = count;
        target = shard;
      }
    }
    if (target == current) continue;  // Already optimally placed.
    events.push_back(MigrationEvent{s.account, current, target, s.total, 0});
    PinAccount(s.account, target, &events);
  }
  return events;
}

uint64_t DirectoryPlacement::Fingerprint() const {
  Sha256 h;
  h.Update("placement.directory");
  h.UpdateInt(num_shards_);
  for (const auto& [account, pin] : directory_) {
    h.UpdateInt<uint32_t>(static_cast<uint32_t>(account.size()));
    h.Update(account);
    h.UpdateInt(pin.shard);
  }
  return h.Finalize().Prefix64();
}

std::string DirectoryPlacement::Serialize() const {
  std::string out = "directory " + std::to_string(num_shards_) + " " +
                    std::to_string(top_k_) + " " +
                    std::to_string(max_entries_) + "\n";
  // Entries go out in migration-recency order (oldest first) so a
  // deserialized twin evicts in the same order the original would.
  std::vector<std::pair<uint64_t, const std::string*>> by_touch;
  by_touch.reserve(directory_.size());
  for (const auto& [account, pin] : directory_) {
    by_touch.emplace_back(pin.touch, &account);
  }
  std::sort(by_touch.begin(), by_touch.end());
  for (const auto& [touch, account] : by_touch) {
    out += *account;
    out += ':';
    out += std::to_string(directory_.at(*account).shard);
    out += '\n';
  }
  return out;
}

Result<std::unique_ptr<DirectoryPlacement>> DirectoryPlacement::Deserialize(
    const std::string& data) {
  size_t eol = data.find('\n');
  if (eol == std::string::npos) {
    return Status::InvalidArgument("directory: missing header line");
  }
  uint32_t num_shards = 0, top_k = 0, max_entries = kDefaultMaxEntries;
  // The third header field (max_entries) arrived with dictionary
  // bounding; two-field headers from older serializations still parse.
  int fields = std::sscanf(data.substr(0, eol).c_str(), "directory %u %u %u",
                           &num_shards, &top_k, &max_entries);
  if (fields < 2 || num_shards == 0) {
    return Status::InvalidArgument("directory: bad header \"" +
                                   data.substr(0, eol) + "\"");
  }
  auto policy =
      std::make_unique<DirectoryPlacement>(num_shards, top_k, max_entries);
  size_t start = eol + 1;
  while (start < data.size()) {
    size_t end = data.find('\n', start);
    if (end == std::string::npos) end = data.size();
    if (end > start) {
      std::string line = data.substr(start, end - start);
      // Accounts never contain ':' in this codebase, but parse from the
      // last one anyway so a future account format can't corrupt shards.
      size_t colon = line.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == line.size()) {
        return Status::InvalidArgument("directory: bad entry \"" + line +
                                       "\"");
      }
      char* endp = nullptr;
      unsigned long shard = std::strtoul(line.c_str() + colon + 1, &endp, 10);
      if (*endp != '\0' || shard >= num_shards) {
        return Status::InvalidArgument("directory: bad shard in \"" + line +
                                       "\"");
      }
      // Entries are serialized oldest-first, so re-stamping in read order
      // reconstructs the original eviction order.
      policy->directory_[line.substr(0, colon)] =
          Pin{static_cast<ShardId>(shard), ++policy->touch_counter_};
    }
    start = end + 1;
  }
  // A serialization may carry more pins than this policy's bound allows
  // (legacy two-field headers default it): enforce the invariant the same
  // way live inserts do, oldest pins first. Entries were stamped in read
  // order, so the smallest touch is always the map's earliest line.
  while (policy->directory_.size() > policy->max_entries_) {
    auto victim = policy->directory_.begin();
    for (auto it = policy->directory_.begin(); it != policy->directory_.end();
         ++it) {
      if (it->second.touch < victim->second.touch) victim = it;
    }
    policy->directory_.erase(victim);
  }
  return policy;
}

// --- LocalityPlacement ------------------------------------------------------

LocalityPlacement::LocalityPlacement(uint32_t num_shards, AccountGroupFn hint)
    : num_shards_(ParseShardCount(num_shards)), hint_(std::move(hint)) {}

ShardId LocalityPlacement::ShardOfAccount(const std::string& account) const {
  if (!hint_) return HashShard(account, num_shards_);
  return HashShard(hint_(account), num_shards_);
}

uint64_t LocalityPlacement::Fingerprint() const {
  Sha256 h;
  h.Update("placement.locality");
  h.UpdateInt(num_shards_);
  return h.Finalize().Prefix64();
}

// --- PlacementRegistry ------------------------------------------------------

void PlacementRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<PlacementPolicy> PlacementRegistry::Create(
    const std::string& name, const PlacementOptions& options) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second(options);
}

bool PlacementRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> PlacementRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

PlacementRegistry& PlacementRegistry::Global() {
  // Built-ins register here (not via static initializers, which static
  // libraries would dead-strip).
  static PlacementRegistry* registry = [] {
    auto* r = new PlacementRegistry();
    r->Register("hash", [](const PlacementOptions& options) {
      for (const Param& p : SplitParams(options.params)) {
        AbortBadParams(options.params, "hash: unknown key \"" + p.key + "\"");
      }
      return std::unique_ptr<PlacementPolicy>(
          new HashPlacement(options.num_shards));
    });
    r->Register("range", [](const PlacementOptions& options) {
      std::vector<std::string> splits;
      bool have_splits = false;
      for (const Param& p : SplitParams(options.params)) {
        if (p.key == "splits") {
          splits = SplitSemis(p.value);
          have_splits = true;
          if (!std::is_sorted(splits.begin(), splits.end())) {
            AbortBadParams(options.params, "splits must be sorted");
          }
          if (options.num_shards > 0 &&
              splits.size() > options.num_shards - 1) {
            AbortBadParams(options.params,
                           "more splits than shard boundaries");
          }
        } else {
          AbortBadParams(options.params,
                         "range: unknown key \"" + p.key + "\"");
        }
      }
      if (!have_splits) {
        splits = RangePlacement::DefaultSplits(options.num_shards);
      }
      return std::unique_ptr<PlacementPolicy>(
          new RangePlacement(options.num_shards, std::move(splits)));
    });
    r->Register("directory", [](const PlacementOptions& options) {
      const uint32_t num_shards = ParseShardCount(options.num_shards);
      uint32_t top_k = DirectoryPlacement::kDefaultTopK;
      uint32_t max_entries = DirectoryPlacement::kDefaultMaxEntries;
      std::vector<std::pair<std::string, ShardId>> assignments;
      for (const Param& p : SplitParams(options.params)) {
        if (p.key == "top_k") {
          top_k = static_cast<uint32_t>(ParseU64OrAbort(options.params, p));
        } else if (p.key == "max_entries") {
          max_entries =
              static_cast<uint32_t>(ParseU64OrAbort(options.params, p));
        } else if (p.key == "assign") {
          for (const std::string& entry : SplitSemis(p.value)) {
            size_t colon = entry.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 == entry.size()) {
              AbortBadParams(options.params,
                             "assign entry \"" + entry + "\" is not "
                             "account:shard");
            }
            char* end = nullptr;
            unsigned long shard =
                std::strtoul(entry.c_str() + colon + 1, &end, 10);
            if (*end != '\0' || shard >= num_shards) {
              AbortBadParams(options.params, "assign entry \"" + entry +
                                                 "\": shard out of range");
            }
            assignments.emplace_back(entry.substr(0, colon),
                                     static_cast<ShardId>(shard));
          }
        } else {
          AbortBadParams(options.params,
                         "directory: unknown key \"" + p.key + "\"");
        }
      }
      auto policy = std::make_unique<DirectoryPlacement>(options.num_shards,
                                                         top_k, max_entries);
      for (const auto& [account, shard] : assignments) {
        policy->Assign(account, shard);
      }
      return std::unique_ptr<PlacementPolicy>(std::move(policy));
    });
    r->Register("locality", [](const PlacementOptions& options) {
      for (const Param& p : SplitParams(options.params)) {
        AbortBadParams(options.params,
                       "locality: unknown key \"" + p.key + "\"");
      }
      return std::unique_ptr<PlacementPolicy>(
          new LocalityPlacement(options.num_shards, options.hint));
    });
    return r;
  }();
  return *registry;
}

}  // namespace thunderbolt::placement
